// Package raceflag reports whether the binary was built with the race
// detector. Allocation-count tests and gates use it to skip themselves:
// the race runtime instruments every allocation, so testing.AllocsPerRun
// measures the instrumentation, not the code under test.
package raceflag
