// Package auth implements the message-integrity primitives Reptor-style
// BFT protocols rely on: pairwise-keyed HMAC-SHA256 authenticators (one
// MAC per receiving replica) and message digests. Real cryptography runs
// (so tampering is actually detected in tests); the modeled CPU cost is
// charged separately by the protocol layer via Cost/DigestCost.
package auth

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"hash"

	"rubin/internal/model"
	"rubin/internal/sim"
)

// KeySize is the symmetric key length in bytes.
const KeySize = 32

// MACSize is the per-receiver MAC length in bytes.
const MACSize = 32

// DigestSize is the message digest length in bytes.
const DigestSize = sha256.Size

// Key is a pairwise symmetric key.
type Key [KeySize]byte

// Digest is a SHA-256 message digest.
type Digest [DigestSize]byte

// Short returns a compact hex prefix for logging.
func (d Digest) Short() string { return fmt.Sprintf("%x", d[:6]) }

// Keyring holds one replica's pairwise keys with every other replica.
// Keyring[i][j] == Keyring[j][i] across the matching ring instances.
//
// A keyring is single-goroutine state (everything in this repository runs
// on one sim loop): the HMAC states and sum scratches below make MAC and
// Verify allocation-free steady-state at the price of not being safe for
// concurrent use.
type Keyring struct {
	self int
	keys []Key

	// macs caches one HMAC-SHA256 state per peer, created on first use
	// and Reset-reused afterwards. sum backs MAC's return value; vsum
	// backs the expected-MAC computation inside Verify, so verifying
	// does not clobber a caller-held MAC result.
	macs []hash.Hash
	sum  [MACSize]byte
	vsum [MACSize]byte
}

// GenerateKeyrings deterministically derives the full pairwise key matrix
// for n replicas from a seed, returning one keyring per replica. The
// derivation is HMAC-based so unit tests get stable keys without an
// out-of-band key exchange.
func GenerateKeyrings(n int, seed uint64) []*Keyring {
	if n < 1 {
		panic("auth: need at least one replica")
	}
	rings := make([]*Keyring, n)
	for i := range rings {
		rings[i] = &Keyring{self: i, keys: make([]Key, n), macs: make([]hash.Hash, n)}
	}
	var seedBytes [8]byte
	binary.BigEndian.PutUint64(seedBytes[:], seed)
	// Every pair derives under the same seed key, so one Reset-reused
	// HMAC state serves the whole matrix.
	mac := hmac.New(sha256.New, seedBytes[:])
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			mac.Reset()
			var pair [16]byte
			binary.BigEndian.PutUint64(pair[:8], uint64(i))
			binary.BigEndian.PutUint64(pair[8:], uint64(j))
			mac.Write(pair[:])
			var k Key
			mac.Sum(k[:0])
			rings[i].keys[j] = k
			rings[j].keys[i] = k
		}
	}
	return rings
}

// Self returns the replica index this keyring belongs to.
func (kr *Keyring) Self() int { return kr.self }

// N returns the number of replicas covered.
func (kr *Keyring) N() int { return len(kr.keys) }

// state returns peer's Reset HMAC state, creating it on first use.
func (kr *Keyring) state(peer int) hash.Hash {
	m := kr.macs[peer]
	if m == nil {
		m = hmac.New(sha256.New, kr.keys[peer][:])
		kr.macs[peer] = m
		return m
	}
	m.Reset()
	return m
}

// MAC computes the HMAC of msg under the pairwise key with peer.
//
// The returned slice aliases a per-keyring scratch buffer: it is valid
// only until the next MAC or Authenticate call on this keyring. Callers
// that retain the value past that point must copy it (Authenticate
// already returns stable copies).
func (kr *Keyring) MAC(peer int, msg []byte) []byte {
	m := kr.state(peer)
	m.Write(msg)
	return m.Sum(kr.sum[:0])
}

// Verify checks a MAC received from peer. It uses its own scratch, so a
// slice previously returned by MAC stays intact across Verify calls.
func (kr *Keyring) Verify(peer int, msg, mac []byte) bool {
	if peer < 0 || peer >= len(kr.keys) || peer == kr.self {
		return false
	}
	m := kr.state(peer)
	m.Write(msg)
	return hmac.Equal(m.Sum(kr.vsum[:0]), mac)
}

// Authenticator is a vector of MACs, one per replica (the sender's own
// entry is empty). BFT broadcasts attach an authenticator so every
// receiver can verify with its pairwise key.
type Authenticator [][]byte

// Authenticate builds the authenticator for msg toward all n replicas.
// The entries do not alias the MAC scratch — they share one fresh backing
// array sized for the whole vector (two allocations total), so a returned
// authenticator stays valid indefinitely.
func (kr *Keyring) Authenticate(msg []byte) Authenticator {
	n := len(kr.keys)
	a := make(Authenticator, n)
	buf := make([]byte, 0, (n-1)*MACSize)
	for peer := 0; peer < n; peer++ {
		if peer == kr.self {
			continue
		}
		m := kr.state(peer)
		m.Write(msg)
		start := len(buf)
		buf = m.Sum(buf)
		a[peer] = buf[start:len(buf):len(buf)]
	}
	return a
}

// VerifyFrom checks the receiver's entry of an authenticator produced by
// sender.
func (kr *Keyring) VerifyFrom(sender int, msg []byte, a Authenticator) bool {
	if sender < 0 || sender >= len(kr.keys) || kr.self >= len(a) {
		return false
	}
	return kr.Verify(sender, msg, a[kr.self])
}

// Size returns the wire size of an authenticator for n replicas.
func (a Authenticator) Size() int {
	total := 0
	for _, m := range a {
		total += len(m)
	}
	return total
}

// Hash computes the SHA-256 digest of msg.
func Hash(msg []byte) Digest { return sha256.Sum256(msg) }

// Cost returns the modeled CPU time of one HMAC over size bytes.
func Cost(p model.CryptoParams, size int) sim.Time {
	return p.HMACBase + model.KB(p.HMACPerKB, size)
}

// AuthenticatorCost returns the modeled CPU time to build an authenticator
// toward n-1 peers.
func AuthenticatorCost(p model.CryptoParams, n, size int) sim.Time {
	if n < 2 {
		return 0
	}
	return Cost(p, size) * sim.Time(n-1)
}

// DigestCost returns the modeled CPU time of one digest over size bytes.
func DigestCost(p model.CryptoParams, size int) sim.Time {
	return p.DigestBase + model.KB(p.DigestPerKB, size)
}
