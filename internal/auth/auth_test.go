package auth

import (
	"bytes"
	"testing"
	"testing/quick"

	"rubin/internal/model"
	"rubin/internal/raceflag"
)

func TestPairwiseKeysAreSymmetricAndDistinct(t *testing.T) {
	rings := GenerateKeyrings(4, 42)
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			if i == j {
				continue
			}
			if rings[i].keys[j] != rings[j].keys[i] {
				t.Fatalf("key(%d,%d) != key(%d,%d)", i, j, j, i)
			}
		}
	}
	if rings[0].keys[1] == rings[0].keys[2] {
		t.Fatal("distinct pairs share a key")
	}
	if rings[0].Self() != 0 || rings[3].Self() != 3 || rings[0].N() != 4 {
		t.Fatal("ring identity wrong")
	}
}

func TestKeyringsDeterministicPerSeed(t *testing.T) {
	a := GenerateKeyrings(3, 7)
	b := GenerateKeyrings(3, 7)
	c := GenerateKeyrings(3, 8)
	if a[0].keys[1] != b[0].keys[1] {
		t.Fatal("same seed must give same keys")
	}
	if a[0].keys[1] == c[0].keys[1] {
		t.Fatal("different seeds must give different keys")
	}
}

func TestMACRoundTrip(t *testing.T) {
	rings := GenerateKeyrings(2, 1)
	msg := []byte("pre-prepare v0 n7")
	mac := rings[0].MAC(1, msg)
	if !rings[1].Verify(0, msg, mac) {
		t.Fatal("valid MAC rejected")
	}
	if rings[1].Verify(0, []byte("tampered"), mac) {
		t.Fatal("tampered message accepted")
	}
	mac[0] ^= 0xFF
	if rings[1].Verify(0, msg, mac) {
		t.Fatal("tampered MAC accepted")
	}
}

func TestVerifyRejectsBadPeerIndices(t *testing.T) {
	rings := GenerateKeyrings(3, 1)
	msg := []byte("m")
	mac := rings[0].MAC(1, msg)
	if rings[1].Verify(-1, msg, mac) || rings[1].Verify(3, msg, mac) || rings[1].Verify(1, msg, mac) {
		t.Fatal("invalid peer index accepted")
	}
}

func TestAuthenticatorVerifiesAtEveryReplica(t *testing.T) {
	const n = 4
	rings := GenerateKeyrings(n, 9)
	msg := []byte("commit v1 n19")
	a := rings[2].Authenticate(msg)
	if len(a) != n {
		t.Fatalf("authenticator has %d entries, want %d", len(a), n)
	}
	if a[2] != nil {
		t.Fatal("sender's own entry should be empty")
	}
	for r := 0; r < n; r++ {
		if r == 2 {
			continue
		}
		if !rings[r].VerifyFrom(2, msg, a) {
			t.Fatalf("replica %d rejected a valid authenticator", r)
		}
	}
	// A faulty replica cannot reuse replica 2's authenticator for a
	// different message.
	for r := 0; r < n; r++ {
		if r == 2 {
			continue
		}
		if rings[r].VerifyFrom(2, []byte("forged"), a) {
			t.Fatalf("replica %d accepted a forged message", r)
		}
	}
}

func TestVerifyFromRejectsWrongSender(t *testing.T) {
	rings := GenerateKeyrings(4, 9)
	msg := []byte("m")
	a := rings[2].Authenticate(msg)
	// Replica 1 claims the message came from replica 3: MAC mismatch.
	if rings[0].VerifyFrom(3, msg, a) {
		t.Fatal("authenticator accepted under wrong sender identity")
	}
	if rings[0].VerifyFrom(-1, msg, a) || rings[0].VerifyFrom(4, msg, a) {
		t.Fatal("out-of-range sender accepted")
	}
}

func TestHashIsStableAndSensitive(t *testing.T) {
	d1 := Hash([]byte("block 1"))
	d2 := Hash([]byte("block 1"))
	d3 := Hash([]byte("block 2"))
	if d1 != d2 {
		t.Fatal("hash not deterministic")
	}
	if d1 == d3 {
		t.Fatal("hash collision on different input")
	}
	if d1.Short() == "" || len(d1.Short()) != 12 {
		t.Fatalf("Short() = %q", d1.Short())
	}
}

func TestCostsScale(t *testing.T) {
	p := model.Default().Crypto
	if Cost(p, 100<<10) <= Cost(p, 1<<10) {
		t.Fatal("HMAC cost must grow with size")
	}
	if DigestCost(p, 100<<10) <= DigestCost(p, 1<<10) {
		t.Fatal("digest cost must grow with size")
	}
	if AuthenticatorCost(p, 4, 1024) != 3*Cost(p, 1024) {
		t.Fatal("authenticator cost should be (n-1) HMACs")
	}
	if AuthenticatorCost(p, 1, 1024) != 0 {
		t.Fatal("single-replica authenticator should cost nothing")
	}
}

func TestAuthenticatorSize(t *testing.T) {
	rings := GenerateKeyrings(4, 1)
	a := rings[0].Authenticate([]byte("m"))
	if a.Size() != 3*MACSize {
		t.Fatalf("Size = %d, want %d", a.Size(), 3*MACSize)
	}
}

// Property: every replica verifies every other replica's authenticator
// over arbitrary messages; no replica verifies a flipped-bit message.
func TestPropertyAuthenticatorSoundness(t *testing.T) {
	rings := GenerateKeyrings(4, 123)
	prop := func(msg []byte, flip uint8) bool {
		if len(msg) == 0 {
			msg = []byte{0}
		}
		sender := int(flip) % 4
		a := rings[sender].Authenticate(msg)
		for r := 0; r < 4; r++ {
			if r == sender {
				continue
			}
			if !rings[r].VerifyFrom(sender, msg, a) {
				return false
			}
		}
		bad := bytes.Clone(msg)
		bad[int(flip)%len(bad)] ^= 1 << (flip % 8)
		if bytes.Equal(bad, msg) {
			return true
		}
		for r := 0; r < 4; r++ {
			if r == sender {
				continue
			}
			if rings[r].VerifyFrom(sender, bad, a) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// The MAC scratch contract: Verify must not clobber a held MAC result,
// and a second MAC call on the same keyring overwrites the first.
func TestMACScratchAliasing(t *testing.T) {
	rings := GenerateKeyrings(3, 5)
	msg := []byte("aliasing probe")
	mac := rings[0].MAC(1, msg)
	want := bytes.Clone(mac)
	rings[0].Verify(2, msg, want) // any Verify; must leave mac intact
	if !bytes.Equal(mac, want) {
		t.Fatal("Verify clobbered a held MAC result")
	}
	rings[0].MAC(2, msg)
	if bytes.Equal(mac, want) {
		t.Fatal("second MAC did not reuse the scratch — pooled state regressed?")
	}
}

func TestAuthenticatorEntriesAreStable(t *testing.T) {
	rings := GenerateKeyrings(4, 6)
	msg := []byte("stable entries")
	a := rings[0].Authenticate(msg)
	want := bytes.Clone(a[1])
	// Later MACs and authenticators must not mutate the earlier vector.
	rings[0].MAC(1, []byte("other"))
	rings[0].Authenticate([]byte("another"))
	if !bytes.Equal(a[1], want) {
		t.Fatal("Authenticate entries alias the MAC scratch")
	}
}

func TestMACVerifySteadyStateAllocs(t *testing.T) {
	if raceflag.Enabled {
		t.Skip("AllocsPerRun is meaningless under the race detector")
	}
	rings := GenerateKeyrings(4, 7)
	msg := make([]byte, 4096)
	mac := bytes.Clone(rings[0].MAC(1, msg)) // warm up peer-1 state
	rings[1].Verify(0, msg, mac)             // warm up verifier state
	if avg := testing.AllocsPerRun(200, func() { rings[0].MAC(1, msg) }); avg > 0 {
		t.Fatalf("MAC allocates %.1f/op steady-state, want 0", avg)
	}
	if avg := testing.AllocsPerRun(200, func() { rings[1].Verify(0, msg, mac) }); avg > 0 {
		t.Fatalf("Verify allocates %.1f/op steady-state, want 0", avg)
	}
	// Authenticate returns stable copies, so it pays exactly two
	// allocations: the vector and its shared backing array.
	rings[0].Authenticate(msg)
	if avg := testing.AllocsPerRun(200, func() { rings[0].Authenticate(msg) }); avg > 2 {
		t.Fatalf("Authenticate allocates %.1f/op steady-state, want <=2", avg)
	}
}

func TestGenerateKeyringsPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	GenerateKeyrings(0, 1)
}

// TestMACVerifyNegativeTable drives Verify through every malformed-input
// class a Byzantine sender (or a broken codec) could produce: truncated
// and padded MACs, MACs under the wrong pairwise key, cross-sender
// replays and empty-message edge cases. None may verify.
func TestMACVerifyNegativeTable(t *testing.T) {
	rings := GenerateKeyrings(4, 21)
	otherDeployment := GenerateKeyrings(4, 22) // same shape, different seed
	msg := []byte("prepare v3 n41")
	// MAC's result aliases the keyring scratch; clone because rings[0]
	// computes another MAC below while this one is still in use.
	valid := bytes.Clone(rings[0].MAC(1, msg))
	cases := []struct {
		name     string
		receiver *Keyring
		sender   int
		msg      []byte
		mac      []byte
	}{
		{"truncated MAC (half)", rings[1], 0, msg, valid[:MACSize/2]},
		{"truncated MAC (one byte short)", rings[1], 0, msg, valid[:MACSize-1]},
		{"empty MAC", rings[1], 0, msg, []byte{}},
		{"nil MAC", rings[1], 0, msg, nil},
		{"padded MAC", rings[1], 0, msg, append(bytes.Clone(valid), 0)},
		{"wrong key (other deployment)", otherDeployment[1], 0, msg, valid},
		{"cross-sender replay (2 claims 0's MAC)", rings[1], 2, msg, valid},
		{"wrong receiver (meant for 1, checked by 2)", rings[2], 0, msg, valid},
		{"empty message under valid-shape MAC", rings[1], 0, []byte{}, valid},
		{"MAC of empty message against real message", rings[1], 0, msg, rings[0].MAC(1, []byte{})},
	}
	for _, tc := range cases {
		if tc.receiver.Verify(tc.sender, tc.msg, tc.mac) {
			t.Errorf("%s: accepted", tc.name)
		}
	}
	// The empty message itself is still authenticatable — only the
	// mismatches above must fail.
	emptyMAC := rings[0].MAC(1, nil)
	if !rings[1].Verify(0, nil, emptyMAC) {
		t.Error("valid MAC over the empty message rejected")
	}
}

// TestAuthenticatorNegativeTable does the same for full authenticator
// vectors: truncated vectors, entries swapped between receivers,
// replayed vectors under a different claimed sender, and empty payloads.
func TestAuthenticatorNegativeTable(t *testing.T) {
	rings := GenerateKeyrings(4, 23)
	msg := []byte("commit v0 n9")
	a := rings[0].Authenticate(msg)

	swapped := make(Authenticator, len(a))
	copy(swapped, a)
	swapped[1], swapped[2] = swapped[2], swapped[1]

	truncatedVector := a[:2] // receivers 2 and 3 have no entry at all

	truncatedEntries := make(Authenticator, len(a))
	for i, m := range a {
		if len(m) > 0 {
			truncatedEntries[i] = m[:MACSize-1]
		}
	}

	cases := []struct {
		name     string
		receiver *Keyring
		sender   int
		msg      []byte
		auth     Authenticator
	}{
		{"cross-sender replay (claimed 2, built by 0)", rings[1], 2, msg, a},
		{"cross-receiver entry swap", rings[1], 0, msg, swapped},
		{"truncated vector", rings[2], 0, msg, truncatedVector},
		{"truncated entries", rings[1], 0, msg, truncatedEntries},
		{"nil authenticator", rings[1], 0, msg, nil},
		{"empty message under real authenticator", rings[1], 0, []byte{}, a},
		{"out-of-range sender (negative)", rings[1], -1, msg, a},
		{"out-of-range sender (past N)", rings[1], 4, msg, a},
	}
	for _, tc := range cases {
		if tc.receiver.VerifyFrom(tc.sender, tc.msg, tc.auth) {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}
