module rubin

go 1.24
