package rubin_test

import (
	"math"
	"testing"

	"rubin/internal/metrics"
)

// TestStateSizeCheckedIn pins the headline claims of E12 against the
// checked-in BENCH_E12.json: on both transports, (1) the incremental
// checkpoint's steady serialization cost is sublinear in total state
// size — it must grow by a far smaller factor than the state itself
// across the prefill sweep — and (2) Merkle partial state transfer
// recovers the restarted replica faster, and over fewer bytes, than the
// legacy full-snapshot baseline at the largest prefill. If a change to
// the kvstore partition layer, the checkpoint retention, or the
// transfer protocol erodes either property, the regenerated file fails
// here instead of silently shipping.
func TestStateSizeCheckedIn(t *testing.T) {
	res, err := metrics.ReadResultFile("BENCH_E12.json")
	if err != nil {
		t.Fatal(err)
	}
	if res.Experiment != "E12" {
		t.Fatalf("experiment %q, want E12", res.Experiment)
	}
	for _, transport := range []string{"rdma-rubin", "tcp-nio"} {
		get := func(mode, metric string) *metrics.ResultSeries {
			s := res.GetSeries(mode+" "+transport, metric)
			if s == nil {
				t.Fatalf("missing series (%s %s, %s)", mode, transport, metric)
			}
			if len(s.Points) < 2 {
				t.Fatalf("series (%s %s, %s) has %d points, want a sweep", mode, transport, metric, len(s.Points))
			}
			return s
		}
		// The prefill sweep endpoints, from the series itself.
		cp := get("partial", metrics.MetricCheckpointBytes)
		small, large := cp.Points[0].X, cp.Points[len(cp.Points)-1].X
		if large < small*4 {
			t.Fatalf("%s: prefill sweep %v..%v spans < 4x — sublinearity unmeasurable", transport, small, large)
		}

		// (1) Sublinear incremental checkpoint cost: across a state-size
		// growth of large/small, steady checkpoint bytes must grow by at
		// most a quarter of the state-growth factor.
		state := get("partial", metrics.MetricStateBytes)
		stateGrowth := state.At(large) / state.At(small)
		cpGrowth := cp.At(large) / cp.At(small)
		if math.IsNaN(stateGrowth) || stateGrowth < 2 {
			t.Fatalf("%s: state grew only %.1fx across the sweep", transport, stateGrowth)
		}
		if cpGrowth > stateGrowth/4 {
			t.Errorf("%s: steady checkpoint bytes grew %.2fx while state grew %.1fx — not sublinear",
				transport, cpGrowth, stateGrowth)
		}

		// (2) Partial beats full at the largest prefill: faster recovery
		// over fewer transferred bytes.
		for _, metric := range []string{metrics.MetricRecoveryTime, metrics.MetricTransferBytes} {
			p, f := get("partial", metric).At(large), get("full", metric).At(large)
			if math.IsNaN(p) || math.IsNaN(f) || p <= 0 || f <= 0 {
				t.Fatalf("%s: %s missing a point at prefill=%v", transport, metric, large)
			}
			if p >= f {
				t.Errorf("%s: partial %s %.0f not below full %.0f at prefill=%v", transport, metric, p, f, large)
			}
		}
		// The full baseline's checkpoint cost grows with state — the
		// contrast that makes (1) meaningful rather than vacuous.
		fullCp := get("full", metrics.MetricCheckpointBytes)
		if g := fullCp.At(large) / fullCp.At(small); g < stateGrowth/2 {
			t.Errorf("%s: full-mode checkpoint bytes grew only %.2fx vs state %.1fx — baseline lost its contrast", transport, g, stateGrowth)
		}
	}
}
