// Command fig4bench regenerates Figure 4 of the paper: an echo server on
// the Reptor communication stack comparing the RUBIN selector with the
// Java-NIO-style selector (window size 30, batching 10), reporting latency
// (4a) and throughput (4b).
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"rubin/internal/bench"
	"rubin/internal/model"
)

func main() {
	payloads := flag.String("payloads", "1,10,20,40,60,80,100", "payload sizes in KB, comma separated")
	flag.Parse()

	kbs, err := parseKBs(*payloads)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fig4bench:", err)
		os.Exit(1)
	}

	fmt.Println("Figure 4 — RUBIN selector vs Java NIO selector over the Reptor stack")
	fmt.Println("(window 30, batch 10, per the paper's measurement)")
	fmt.Println()
	latency, throughput, err := bench.Fig4Tables(kbs, model.Default())
	if err != nil {
		fmt.Fprintln(os.Stderr, "fig4bench:", err)
		os.Exit(1)
	}
	fmt.Println(latency.Render())
	fmt.Println(throughput.Render())
}

func parseKBs(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		kb, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || kb < 1 {
			return nil, fmt.Errorf("bad payload %q", part)
		}
		out = append(out, kb)
	}
	return out, nil
}
