// Command fig4bench regenerates Figure 4 of the paper: an echo server on
// the Reptor communication stack comparing the RUBIN selector with the
// Java-NIO-style selector (window size 30, batching 10), reporting latency
// (4a) and throughput (4b). It is a thin front-end to the registered
// experiments E3 and E4; cmd/benchsuite runs the same code and also
// persists machine-readable BENCH_E3.json / BENCH_E4.json.
package main

import (
	"flag"
	"fmt"
	"os"

	"rubin/internal/bench"
)

func main() {
	payloads := flag.String("payloads", "", "payload sizes in KB, comma separated (default: the paper's sweep)")
	seed := flag.Int64("seed", 1, "simulation seed")
	flag.Parse()

	rc := bench.DefaultRunContext()
	rc.Seed = *seed
	if *payloads != "" {
		rc.Knobs = map[string]string{"payloads_kb": *payloads}
	}

	fmt.Println("Figure 4 — RUBIN selector vs Java NIO selector over the Reptor stack (experiments E3, E4)")
	fmt.Println("(window 30, batch 10, per the paper's measurement)")
	fmt.Println()
	for _, name := range []string{"E3", "E4"} {
		res, err := bench.Run(name, rc)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fig4bench:", err)
			os.Exit(1)
		}
		for _, tab := range res.Tables() {
			fmt.Println(tab.Render())
		}
	}
}
