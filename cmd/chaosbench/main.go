// Command chaosbench runs experiment E7: BFT agreement throughput and
// latency across a scripted fault timeline — primary crash, view change,
// recovery of the restarted replica via PBFT state transfer, partition of
// the new leader, and heal — over both transport backends. The timeline
// is orchestrated by the deterministic chaos subsystem, so a given seed
// reproduces the identical virtual-time trace.
package main

import (
	"flag"
	"fmt"
	"os"

	"rubin/internal/bench"
	"rubin/internal/model"
	"rubin/internal/transport"
)

func main() {
	payload := flag.Int("payload", 512, "request payload size in bytes")
	window := flag.Int("window", 16, "client-side outstanding requests")
	seed := flag.Int64("seed", 1, "simulation seed")
	flag.Parse()

	fmt.Println("E7 — BFT agreement under faults: crash, view change, state transfer, partition, heal")
	fmt.Println()
	for _, kind := range []transport.Kind{transport.KindRDMA, transport.KindTCP} {
		cfg := bench.ChaosConfig{Kind: kind, Payload: *payload, Window: *window, Seed: *seed}
		res, err := bench.RunChaos(cfg, model.Default())
		if err != nil {
			fmt.Fprintln(os.Stderr, "chaosbench:", err)
			os.Exit(1)
		}
		fmt.Println(res.Render())
		fmt.Printf("restarted replica completed %d state transfer(s)\n", res.StateTransfers)
		fmt.Printf("fault timeline for %s (virtual time):\n%s\n", kind, res.Trace)
	}
}
