// Command chaosbench runs experiment E7: BFT agreement throughput and
// latency across a scripted fault timeline — primary crash, view change,
// recovery of the restarted replica via PBFT state transfer, partition of
// the new leader, and heal — over both transport backends. The timeline
// is orchestrated by the deterministic chaos subsystem, so a given seed
// reproduces the identical virtual-time trace (printed below the tables).
// cmd/benchsuite runs the same code and also persists machine-readable
// BENCH_E7.json.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"

	"rubin/internal/bench"
)

func main() {
	payload := flag.Int("payload", 0, "request payload size in bytes (default 512)")
	window := flag.Int("window", 0, "client-side outstanding requests (default 16)")
	seed := flag.Int64("seed", 1, "simulation seed")
	quick := flag.Bool("quick", false, "registry quick mode (window 8 — the once-wedging configuration CI pins)")
	flag.Parse()

	rc := bench.DefaultRunContext()
	rc.Seed = *seed
	rc.Quick = *quick
	rc.Knobs = map[string]string{}
	if *payload > 0 {
		rc.Knobs["payload"] = strconv.Itoa(*payload)
	}
	if *window > 0 {
		rc.Knobs["window"] = strconv.Itoa(*window)
	}

	res, err := bench.Run("E7", rc)
	if err != nil {
		fmt.Fprintln(os.Stderr, "chaosbench:", err)
		os.Exit(1)
	}
	fmt.Println("E7 — BFT agreement under faults: crash, view change, state transfer, partition, heal")
	fmt.Printf("phases by index: %s\n\n", res.Config["phases"])
	for _, tab := range res.Tables() {
		fmt.Println(tab.Render())
	}
	fmt.Printf("fault counters by index: %s\n\n", res.Config["counter_index"])
	var notes []string
	for k := range res.Notes {
		notes = append(notes, k)
	}
	sort.Strings(notes)
	for _, k := range notes {
		fmt.Printf("fault timeline %s (virtual time):\n%s\n", k, res.Notes[k])
	}
}
