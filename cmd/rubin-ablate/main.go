// Command rubin-ablate quantifies each Section IV optimization of the
// RUBIN channel by disabling it in isolation (experiment E6): selective
// signaling, doorbell batching, inline sends, and the projected zero-copy
// receive path. cmd/benchsuite runs the same code and also persists
// machine-readable BENCH_E6.json.
package main

import (
	"flag"
	"fmt"
	"os"

	"rubin/internal/bench"
)

func main() {
	payloads := flag.String("payloads", "", "payload sizes in KB (default 1,4,16,64,100)")
	seed := flag.Int64("seed", 1, "simulation seed")
	flag.Parse()

	rc := bench.DefaultRunContext()
	rc.Seed = *seed
	if *payloads != "" {
		rc.Knobs = map[string]string{"payloads_kb": *payloads}
	}

	res, err := bench.Run("E6", rc)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rubin-ablate:", err)
		os.Exit(1)
	}
	fmt.Println("E6 — RUBIN channel optimization ablations (echo mean RTT)")
	fmt.Println()
	for _, tab := range res.Tables() {
		fmt.Println(tab.Render())
	}
}
