// Command rubin-ablate quantifies each Section IV optimization of the
// RUBIN channel by disabling it in isolation (experiment E6): selective
// signaling, doorbell batching, inline sends, and the projected zero-copy
// receive path.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"rubin/internal/bench"
	"rubin/internal/model"
)

func main() {
	payloads := flag.String("payloads", "1,4,16,64,100", "payload sizes in KB")
	flag.Parse()

	kbs, err := parseKBs(*payloads)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rubin-ablate:", err)
		os.Exit(1)
	}

	fmt.Println("E6 — RUBIN channel optimization ablations (echo mean RTT)")
	fmt.Println()
	tab, err := bench.AblationTable(kbs, model.Default())
	if err != nil {
		fmt.Fprintln(os.Stderr, "rubin-ablate:", err)
		os.Exit(1)
	}
	fmt.Println(tab.Render())
}

func parseKBs(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		kb, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || kb < 1 {
			return nil, fmt.Errorf("bad payload %q", part)
		}
		out = append(out, kb)
	}
	return out, nil
}
