// Command fig3bench regenerates Figure 3 of the paper: the two-machine
// echo micro-benchmark comparing TCP, RDMA Send/Recv, RDMA Read/Write and
// the optimized RDMA Channel, reporting latency (3a) and throughput (3b)
// over payloads of 1–100 KB.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"rubin/internal/bench"
	"rubin/internal/model"
)

func main() {
	payloads := flag.String("payloads", "1,2,4,8,16,32,64,100", "payload sizes in KB, comma separated")
	flag.Parse()

	kbs, err := parseKBs(*payloads)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fig3bench:", err)
		os.Exit(1)
	}

	fmt.Println("Figure 3 — RDMA channel micro-benchmark")
	fmt.Println("(simulated testbed: two 4-core hosts, 10 Gbps RoCE-style link; see DESIGN.md)")
	fmt.Println()
	latency, throughput, err := bench.Fig3Tables(kbs, model.Default())
	if err != nil {
		fmt.Fprintln(os.Stderr, "fig3bench:", err)
		os.Exit(1)
	}
	fmt.Println(latency.Render())
	fmt.Println(throughput.Render())
}

func parseKBs(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		kb, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || kb < 1 {
			return nil, fmt.Errorf("bad payload %q", part)
		}
		out = append(out, kb)
	}
	return out, nil
}
