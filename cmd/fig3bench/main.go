// Command fig3bench regenerates Figure 3 of the paper: the two-machine
// echo micro-benchmark comparing TCP, RDMA Send/Recv, RDMA Read/Write and
// the optimized RDMA Channel, reporting latency (3a) and throughput (3b)
// over payloads of 1–100 KB. It is a thin front-end to the registered
// experiments E1 and E2; cmd/benchsuite runs the same code and also
// persists machine-readable BENCH_E1.json / BENCH_E2.json.
package main

import (
	"flag"
	"fmt"
	"os"

	"rubin/internal/bench"
)

func main() {
	payloads := flag.String("payloads", "", "payload sizes in KB, comma separated (default: the paper's sweep)")
	seed := flag.Int64("seed", 1, "simulation seed")
	flag.Parse()

	rc := bench.DefaultRunContext()
	rc.Seed = *seed
	if *payloads != "" {
		rc.Knobs = map[string]string{"payloads_kb": *payloads}
	}

	fmt.Println("Figure 3 — RDMA channel micro-benchmark (experiments E1, E2)")
	fmt.Println("(simulated testbed: two 4-core hosts, 10 Gbps RoCE-style link)")
	fmt.Println()
	for _, name := range []string{"E1", "E2"} {
		res, err := bench.Run(name, rc)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fig3bench:", err)
			os.Exit(1)
		}
		for _, tab := range res.Tables() {
			fmt.Println(tab.Render())
		}
	}
}
