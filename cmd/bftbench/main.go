// Command bftbench runs the fully replicated system evaluation the paper
// lists as future work (experiment E5): a 4-replica PBFT cluster ordering
// client requests over the NIO stack vs the RUBIN stack.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"rubin/internal/bench"
	"rubin/internal/model"
)

func main() {
	payloads := flag.String("payloads", "1,4,16", "request payload sizes in KB")
	flag.Parse()

	kbs, err := parseKBs(*payloads)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bftbench:", err)
		os.Exit(1)
	}

	fmt.Println("E5 — BFT agreement over RUBIN vs Java NIO (4 replicas, f=1, PBFT)")
	fmt.Println()
	latency, throughput, sendFaults, err := bench.BFTTables(kbs, model.Default())
	if err != nil {
		fmt.Fprintln(os.Stderr, "bftbench:", err)
		os.Exit(1)
	}
	fmt.Println(latency.Render())
	fmt.Println(throughput.Render())
	fmt.Printf("send faults surfaced across all runs: %d\n", sendFaults)
}

func parseKBs(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		kb, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || kb < 1 {
			return nil, fmt.Errorf("bad payload %q", part)
		}
		out = append(out, kb)
	}
	return out, nil
}
