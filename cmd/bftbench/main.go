// Command bftbench runs the fully replicated system evaluation the paper
// lists as future work (experiment E5): a PBFT cluster ordering client
// requests over the NIO stack vs the RUBIN stack. Cluster shape and load
// are parameters (-n, -f, -clients); cmd/benchsuite runs the same code and
// also persists machine-readable BENCH_E5.json.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"

	"rubin/internal/bench"
)

func main() {
	payloads := flag.String("payloads", "", "request payload sizes in KB (default 1,4,16)")
	n := flag.Int("n", 0, "replica count (default 4; f defaults to (n-1)/3)")
	f := flag.Int("f", 0, "tolerated faults (default (n-1)/3)")
	clients := flag.Int("clients", 0, "closed-loop clients (default 1)")
	seed := flag.Int64("seed", 1, "simulation seed")
	flag.Parse()

	rc := bench.DefaultRunContext()
	rc.Seed = *seed
	rc.Knobs = map[string]string{}
	if *payloads != "" {
		rc.Knobs["payloads_kb"] = *payloads
	}
	if *n > 0 {
		rc.Knobs["n"] = strconv.Itoa(*n)
	}
	if *f > 0 {
		rc.Knobs["f"] = strconv.Itoa(*f)
	}
	if *clients > 0 {
		rc.Knobs["clients"] = strconv.Itoa(*clients)
	}

	res, err := bench.Run("E5", rc)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bftbench:", err)
		os.Exit(1)
	}
	fmt.Printf("E5 — BFT agreement over RUBIN vs Java NIO (%s, PBFT)\n\n", res.Config["cluster"])
	for _, tab := range res.Tables() {
		fmt.Println(tab.Render())
	}
}
