// Command benchsuite runs any subset of the registered experiments
// (E1–E12 and ALLOC)
// and writes one machine-readable BENCH_<name>.json per experiment, so the
// repository's benchmark trajectory can be recorded and diffed PR over PR.
//
// Usage:
//
//	go run ./cmd/benchsuite -list
//	go run ./cmd/benchsuite -experiments E5,E8 -out .
//	go run ./cmd/benchsuite -quick -out /tmp/bench          # CI smoke
//	go run ./cmd/benchsuite -experiments E5 -compare old/   # regression deltas
//	go run ./cmd/benchsuite -validate /tmp/bench            # schema check only
//	go run ./cmd/benchsuite -quick -experiments E9 -trace out.json
//
// Every run is deterministic: the same -seed, knobs and code produce
// byte-identical JSON (including the -trace file). -compare loads a
// previous run's files (a directory of BENCH_*.json or a single file) and
// prints point-wise deltas sorted by drift. -knob name=value overrides
// experiment parameters (repeatable); the accepted knobs of each
// experiment are listed in docs/EXPERIMENTS.md and echoed in each file's
// "config" object. -trace records per-request span trees and queue/CPU/
// backlog time series across every measurement run and writes one Chrome
// trace-event file (open in chrome://tracing or https://ui.perfetto.dev).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"rubin/internal/bench"
	"rubin/internal/metrics"
	"rubin/internal/obs"
)

// knobFlags collects repeated -knob name=value flags.
type knobFlags map[string]string

func (k knobFlags) String() string {
	var parts []string
	for name, v := range k {
		parts = append(parts, name+"="+v)
	}
	sort.Strings(parts)
	return strings.Join(parts, ",")
}

func (k knobFlags) Set(s string) error {
	name, value, ok := strings.Cut(s, "=")
	if !ok || name == "" {
		return fmt.Errorf("knob %q: want name=value", s)
	}
	k[name] = value
	return nil
}

func main() {
	experiments := flag.String("experiments", "all", "comma-separated experiment names (E1..E12, ALLOC) or 'all'")
	out := flag.String("out", ".", "directory to write BENCH_<name>.json files into")
	quick := flag.Bool("quick", false, "shrink sweeps and message counts (CI smoke mode)")
	seed := flag.Int64("seed", 1, "simulation seed")
	compare := flag.String("compare", "", "previous run to diff against: a BENCH_*.json file or a directory of them")
	validate := flag.String("validate", "", "validate every BENCH_*.json in this directory against the schema, then exit")
	trace := flag.String("trace", "", "write a Chrome trace-event JSON of every measurement run to this file")
	list := flag.Bool("list", false, "list registered experiments and exit")
	listKnobs := flag.Bool("knobs", false, "list each experiment's accepted knobs with effective defaults and exit")
	tables := flag.Bool("tables", true, "print human-readable tables alongside the JSON")
	knobs := knobFlags{}
	flag.Var(knobs, "knob", "experiment knob override, name=value (repeatable)")
	flag.Parse()

	if *list {
		for _, e := range bench.Experiments() {
			fmt.Printf("%-4s %-70s [%s]\n", e.Name, e.Title, e.Figure)
		}
		return
	}
	if *listKnobs {
		rc := bench.DefaultRunContext()
		rc.Quick = *quick
		for _, e := range bench.Experiments() {
			cfg, err := e.Params(rc)
			if err != nil {
				fatal(err)
			}
			names := make([]string, 0, len(cfg))
			for k := range cfg {
				names = append(names, k)
			}
			sort.Strings(names)
			fmt.Printf("%s:\n", e.Name)
			for _, k := range names {
				fmt.Printf("  -knob %s=%s\n", k, cfg[k])
			}
		}
		return
	}
	if *validate != "" {
		if err := validateDir(*validate); err != nil {
			fatal(err)
		}
		return
	}

	names, err := selectExperiments(*experiments)
	if err != nil {
		fatal(err)
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}
	rc := bench.DefaultRunContext()
	rc.Seed = *seed
	rc.Quick = *quick
	rc.Knobs = knobs
	if *trace != "" {
		rc.Trace = obs.New(obs.Options{Spans: true})
	}

	failedCompares := 0
	for _, name := range names {
		fmt.Printf("== %s ==\n", name)
		res, err := bench.Run(name, rc)
		if err != nil {
			fatal(err)
		}
		path, err := res.WriteFile(*out)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s (%d series)\n", path, len(res.Series))
		if *tables {
			for _, tab := range res.Tables() {
				fmt.Println(tab.Render())
			}
		}
		if *compare != "" {
			n, err := compareAgainst(*compare, res)
			if err != nil {
				fatal(err)
			}
			failedCompares += n
		}
	}
	if failedCompares > 0 {
		fmt.Fprintf(os.Stderr, "benchsuite: %d comparison(s) could not be made\n", failedCompares)
	}
	if *trace != "" {
		if err := writeTrace(*trace, rc.Trace); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s (%d spans, %d samples, %d runs; %d spans dropped)\n",
			*trace, rc.Trace.SpanCount(), rc.Trace.SampleCount(), rc.Trace.RunCount(), rc.Trace.DroppedSpans())
	}
}

// writeTrace exports the collected span trees and time series as a Chrome
// trace-event file.
func writeTrace(path string, tr *obs.Tracer) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tr.WriteChromeTrace(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// selectExperiments resolves the -experiments flag against the registry.
func selectExperiments(s string) ([]string, error) {
	if s == "all" {
		var names []string
		for _, e := range bench.Experiments() {
			names = append(names, e.Name)
		}
		return names, nil
	}
	var names []string
	for _, part := range strings.Split(s, ",") {
		name := strings.TrimSpace(part)
		if _, ok := bench.Lookup(name); !ok {
			return nil, fmt.Errorf("unknown experiment %q (use -list)", name)
		}
		names = append(names, name)
	}
	return names, nil
}

// compareAgainst diffs res against the stored baseline at path (a file or
// a directory holding BENCH_<name>.json). A missing baseline for this
// experiment is reported but not fatal; it counts as a failed compare.
func compareAgainst(path string, res *metrics.Result) (failed int, err error) {
	info, err := os.Stat(path)
	if err != nil {
		return 0, err
	}
	file := path
	if info.IsDir() {
		file = filepath.Join(path, metrics.ResultFilename(res.Experiment))
	}
	old, err := metrics.ReadResultFile(file)
	if os.IsNotExist(err) {
		fmt.Printf("compare: no baseline %s\n", file)
		return 1, nil
	}
	if err != nil {
		return 0, err
	}
	deltas, err := metrics.Compare(old, res)
	if err != nil {
		return 0, err
	}
	fmt.Printf("deltas vs %s:\n%s\n", file, metrics.RenderDeltas(deltas))
	return 0, nil
}

// validateDir checks every BENCH_*.json below dir against the schema.
func validateDir(dir string) error {
	matches, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	if err != nil {
		return err
	}
	if len(matches) == 0 {
		return fmt.Errorf("no BENCH_*.json files in %s", dir)
	}
	sort.Strings(matches)
	for _, path := range matches {
		res, err := metrics.ReadResultFile(path)
		if err != nil {
			return err
		}
		want := metrics.ResultFilename(res.Experiment)
		if got := filepath.Base(path); got != want {
			return fmt.Errorf("%s: holds experiment %s (want file name %s)", path, res.Experiment, want)
		}
		fmt.Printf("%s: valid (%s, %d series, seed %d)\n", path, res.Experiment, len(res.Series), res.Seed)
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchsuite:", err)
	os.Exit(1)
}
