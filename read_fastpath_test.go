package rubin_test

import (
	"math"
	"testing"

	"rubin/internal/metrics"
)

// TestReadFastPathCheckedIn pins the headline claim of E11 against the
// checked-in BENCH_E11.json: the read-share sweep covers both transports
// with the fast path on and off, and at a 99% read share the read-only
// optimization lifts goodput at least 1.5x over the fully ordered path
// on at least one transport. Every fp=on point in that file passed the
// workload linearizability oracle when it was generated, so the ratio is
// a safety-checked speedup, not a shortcut. If a change to the client,
// the replica read path or the batcher erodes the win, the regenerated
// file fails here instead of silently shipping.
func TestReadFastPathCheckedIn(t *testing.T) {
	res, err := metrics.ReadResultFile("BENCH_E11.json")
	if err != nil {
		t.Fatal(err)
	}
	if res.Experiment != "E11" {
		t.Fatalf("experiment %q, want E11", res.Experiment)
	}
	readPcts := []float64{50, 90, 99}
	bestRatio := 0.0
	for _, transport := range []string{"RUBIN", "NIO"} {
		var at99 [2]float64 // fp=on, fp=off
		for i, fp := range []string{"fp=on", "fp=off"} {
			name := "mix " + fp + " " + transport
			s := res.GetSeries(name, metrics.MetricGoodput)
			if s == nil {
				t.Fatalf("missing series (%s, %s)", name, metrics.MetricGoodput)
			}
			for _, x := range readPcts {
				if y := s.At(x); math.IsNaN(y) || y <= 0 {
					t.Fatalf("series %q: no positive point at read_pct=%v", name, x)
				}
			}
			at99[i] = s.At(99)
		}
		if ratio := at99[0] / at99[1]; ratio > bestRatio {
			bestRatio = ratio
		}
		// fp=on points must prove they used the fast path: the exported
		// fast_reads counter is positive at every read share.
		fr := res.GetSeries("mix fp=on "+transport, metrics.MetricFastReads)
		if fr == nil {
			t.Fatalf("missing series (mix fp=on %s, %s)", transport, metrics.MetricFastReads)
		}
		for _, x := range readPcts {
			if y := fr.At(x); math.IsNaN(y) || y <= 0 {
				t.Fatalf("fp=on %s served no fast reads at read_pct=%v", transport, x)
			}
		}
	}
	if bestRatio < 1.5 {
		t.Fatalf("goodput fp=on/fp=off at 99%% reads = %.2fx on the better transport, want >= 1.5x", bestRatio)
	}
}
