package rubin_test

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"rubin/internal/bench"
)

// markdownLinkRE captures the target of inline markdown links.
var markdownLinkRE = regexp.MustCompile(`\]\(([^)\s]+)\)`)

// docFiles returns README.md plus every markdown file under docs/.
func docFiles(t *testing.T) []string {
	t.Helper()
	files := []string{"README.md"}
	matches, err := filepath.Glob(filepath.Join("docs", "*.md"))
	if err != nil {
		t.Fatal(err)
	}
	return append(files, matches...)
}

// TestDocsLinks asserts every relative link in README.md and docs/*.md
// resolves to an existing file in the repository — the docs link-check CI
// runs. External links (with a scheme) and pure anchors are skipped;
// fragment suffixes on relative links are ignored.
func TestDocsLinks(t *testing.T) {
	for _, file := range docFiles(t) {
		data, err := os.ReadFile(file)
		if err != nil {
			t.Fatalf("%s: %v", file, err)
		}
		for _, m := range markdownLinkRE.FindAllStringSubmatch(string(data), -1) {
			target := m[1]
			if strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") ||
				strings.HasPrefix(target, "#") {
				continue
			}
			target, _, _ = strings.Cut(target, "#")
			resolved := filepath.Join(filepath.Dir(file), target)
			if _, err := os.Stat(resolved); err != nil {
				t.Errorf("%s: broken link %q (resolved %s): %v", file, m[1], resolved, err)
			}
		}
	}
}

// TestDocsMentionEveryExperiment asserts docs/EXPERIMENTS.md documents
// each registered experiment with its own section heading, so the
// registry and its documentation cannot drift apart silently.
func TestDocsMentionEveryExperiment(t *testing.T) {
	data, err := os.ReadFile(filepath.Join("docs", "EXPERIMENTS.md"))
	if err != nil {
		t.Fatal(err)
	}
	text := string(data)
	experiments := bench.Experiments()
	if len(experiments) < 8 {
		t.Fatalf("registry has %d experiments, want at least 8", len(experiments))
	}
	for _, e := range experiments {
		if !strings.Contains(text, "## "+e.Name+" ") {
			t.Errorf("docs/EXPERIMENTS.md: missing section for experiment %s", e.Name)
		}
	}
}
